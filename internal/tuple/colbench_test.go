package tuple

import (
	"math/rand"
	"testing"
)

// BenchmarkColumnarKernel compares the host-side hot kernels of ISSUE 7
// in AoS form (striding []Tuple) against their SoA form (dense key
// column). These are the kernels the columnar operator paths run; the
// bench guard pins the soa variants against >10% regression
// (make bench-guard).

const kernelN = 1 << 17

func kernelData() ([]Tuple, *Columns) {
	rng := rand.New(rand.NewSource(42))
	ts := make([]Tuple, kernelN)
	for i := range ts {
		ts[i] = Tuple{Key: Key(rng.Uint64() % (1 << 24)), Val: Value(i)}
	}
	c := &Columns{}
	c.SetTuples(ts)
	return ts, c
}

func BenchmarkColumnarKernel(b *testing.B) {
	ts, cols := kernelData()

	// Scan: find an absent needle, i.e. the full-length compare loop.
	b.Run("scan-aos", func(b *testing.B) {
		b.SetBytes(kernelN * Size)
		var sink int
		for i := 0; i < b.N; i++ {
			m := 0
			for m < len(ts) && ts[m].Key != Key(1<<60) {
				m++
			}
			sink += m
		}
		_ = sink
	})
	b.Run("scan-soa", func(b *testing.B) {
		b.SetBytes(kernelN * 8)
		var sink int
		for i := 0; i < b.N; i++ {
			sink += FindKey(cols.Keys, 0, Key(1<<60))
		}
		_ = sink
	})

	// Partition: the operator's two passes — histogram, then scatter —
	// each need every tuple's bucket. The AoS path recomputes the
	// range-partitioning mul/div per tuple per pass (what Partitioner
	// .Bucket does); the SoA path runs the shift kernel once over the
	// key column and reuses the ids in both passes.
	const buckets = uint64(64)
	const keySpace = uint64(1) << 24
	const shift = 24 - 6
	b.Run("partition-aos", func(b *testing.B) {
		b.SetBytes(kernelN * Size)
		var hist, off [buckets]int64
		for i := 0; i < b.N; i++ {
			for j := range ts {
				hist[uint64(ts[j].Key)*buckets/keySpace]++
			}
			for j := range ts {
				off[uint64(ts[j].Key)*buckets/keySpace]++
			}
		}
		_, _ = hist, off
	})
	b.Run("partition-soa", func(b *testing.B) {
		b.SetBytes(kernelN * 8)
		ids := make([]int32, kernelN)
		var hist, off [buckets]int64
		for i := 0; i < b.N; i++ {
			keys := cols.Keys
			for j := range keys {
				ids[j] = int32(keys[j] >> shift)
			}
			for _, id := range ids {
				hist[id]++
			}
			for _, id := range ids {
				off[id]++
			}
		}
		_, _ = hist, off
	})

	// Sort: each iteration re-sorts a fresh copy of the same data; the
	// copy cost is charged to both variants.
	b.Run("sort-aos", func(b *testing.B) {
		b.SetBytes(kernelN * Size)
		buf := make([]Tuple, kernelN)
		for i := 0; i < b.N; i++ {
			copy(buf, ts)
			SortSliceByKey(buf)
		}
	})
	b.Run("sort-soa", func(b *testing.B) {
		b.SetBytes(kernelN * Size)
		buf := &Columns{}
		buf.Resize(kernelN)
		scratch := &Columns{}
		for i := 0; i < b.N; i++ {
			copy(buf.Keys, cols.Keys)
			copy(buf.Vals, cols.Vals)
			buf.SortByKey(scratch)
		}
	})
}
