package tuple

// Structure-of-arrays (SoA) relation kernels.
//
// A []Tuple is the simulated memory layout: densely packed 16-byte
// records. The host, however, spends most of its wall-clock in inner
// loops that look at only the key half (scan compare, partition bucket
// math, sort compare) — with the AoS layout every such loop strides 16
// bytes to use 8, wasting half the host cache bandwidth and defeating
// the compiler's ability to keep the loop branch-light. Columns is the
// same relation as two dense arrays, one per field, so key-only loops
// touch exactly the bytes they need.
//
// Columns is a host-execution representation only. Operators convert at
// batch boundaries (cheap: two sequential copies), run the hot kernel
// over the columns, and convert back; every simulated-memory access is
// still charged through the engine's Load/Store/Charge calls against
// the AoS addresses, so simulated results are layout-invariant (see
// DESIGN.md §14).

// Columns holds one relation as separate key and value arrays (SoA).
// Keys and Vals always have equal length.
type Columns struct {
	Keys []Key
	Vals []Value
}

// Len returns the number of tuples represented.
func (c *Columns) Len() int { return len(c.Keys) }

// Reset empties the columns, keeping capacity for reuse.
func (c *Columns) Reset() {
	c.Keys = c.Keys[:0]
	c.Vals = c.Vals[:0]
}

// Resize sets the length to n, reusing capacity when possible. Newly
// exposed elements hold stale data; callers overwrite before reading.
func (c *Columns) Resize(n int) {
	if cap(c.Keys) < n {
		c.Keys = make([]Key, n)
		c.Vals = make([]Value, n)
		return
	}
	c.Keys = c.Keys[:n]
	c.Vals = c.Vals[:n]
}

// AppendTuples appends ts in AoS→SoA form.
func (c *Columns) AppendTuples(ts []Tuple) {
	for i := range ts {
		c.Keys = append(c.Keys, ts[i].Key)
		c.Vals = append(c.Vals, ts[i].Val)
	}
}

// SetTuples replaces the contents with ts (AoS→SoA), reusing capacity.
func (c *Columns) SetTuples(ts []Tuple) {
	c.Resize(len(ts))
	ks, vs := c.Keys, c.Vals
	if len(ks) != len(ts) || len(vs) != len(ts) {
		return // unreachable; keeps the bounds checks hoisted below
	}
	for i := range ts {
		ks[i] = ts[i].Key
		vs[i] = ts[i].Val
	}
}

// WriteTuples interleaves the columns back into ts (SoA→AoS). ts must
// have length Len().
func (c *Columns) WriteTuples(ts []Tuple) {
	ks, vs := c.Keys, c.Vals
	if len(ts) != len(ks) || len(vs) != len(ks) {
		panic("tuple: Columns.WriteTuples length mismatch")
	}
	for i := range ts {
		ts[i].Key = ks[i]
		ts[i].Val = vs[i]
	}
}

// AppendTo appends the columns in AoS form to dst and returns it.
func (c *Columns) AppendTo(dst []Tuple) []Tuple {
	ks, vs := c.Keys, c.Vals
	for i := range ks {
		dst = append(dst, Tuple{Key: ks[i], Val: vs[i]})
	}
	return dst
}

// ExtractKeys fills dst (resliced from its capacity when possible) with
// the key column of ts and returns it. This is the AoS→key-column half
// of the conversion, used by the engine's region key mirrors.
func ExtractKeys(dst []Key, ts []Tuple) []Key {
	if cap(dst) < len(ts) {
		dst = make([]Key, len(ts))
	}
	dst = dst[:len(ts)]
	for i := range ts {
		dst[i] = ts[i].Key
	}
	return dst
}

// FindKey returns the first index i ≥ from with keys[i] == needle, or
// len(keys) if there is none. The 4-wide main loop keeps the compare
// chain free of per-element branch mispredictions for the common
// no-match stretches of a scan.
func FindKey(keys []Key, from int, needle Key) int {
	i := from
	if i < 0 {
		i = 0
	}
	for ; i+4 <= len(keys); i += 4 {
		if keys[i] == needle || keys[i+1] == needle ||
			keys[i+2] == needle || keys[i+3] == needle {
			break
		}
	}
	for ; i < len(keys); i++ {
		if keys[i] == needle {
			return i
		}
	}
	return len(keys)
}

// RunEnd returns the first index i > start with keys[i] != keys[start]
// (or len(keys)): the exclusive end of the equal-key run beginning at
// start. start must be a valid index.
func RunEnd(keys []Key, start int) int {
	k := keys[start]
	i := start + 1
	for ; i+4 <= len(keys); i += 4 {
		if keys[i] != k || keys[i+1] != k || keys[i+2] != k || keys[i+3] != k {
			break
		}
	}
	for ; i < len(keys); i++ {
		if keys[i] != k {
			return i
		}
	}
	return len(keys)
}

// AdvanceBelow returns the first index i ≥ from with keys[i] >= bound,
// or len(keys): the sort-merge join's "advance R while its key is less
// than the current S key" kernel.
func AdvanceBelow(keys []Key, from int, bound Key) int {
	i := from
	if i < 0 {
		i = 0
	}
	for ; i+4 <= len(keys); i += 4 {
		if keys[i] >= bound || keys[i+1] >= bound ||
			keys[i+2] >= bound || keys[i+3] >= bound {
			break
		}
	}
	for ; i < len(keys); i++ {
		if keys[i] >= bound {
			return i
		}
	}
	return len(keys)
}

// radixSortCutoff is the size below which SortByKey falls back to an
// insertion sort: for tiny runs the O(n) digit passes cost more than
// the quadratic scan.
const radixSortCutoff = 48

// SortByKey sorts the columns by key ascending, carrying the payload
// permutation, using scratch as the ping-pong buffer (resized as
// needed; its contents are undefined afterwards).
//
// The algorithm is a least-significant-digit radix sort over 8-bit
// digits, with the pass count derived from the maximum key present, so
// a 2^24 key space pays three counting passes rather than eight. LSD
// radix is stable, hence a deterministic function of the key sequence —
// repeated runs permute equal-key tuples identically, which is all the
// simulation requires (it observes addresses and counts, never
// payloads). The permutation may differ from SortSliceByKey's; both are
// valid sorts, and every verifier compares multisets, not orderings.
func (c *Columns) SortByKey(scratch *Columns) {
	n := len(c.Keys)
	if n < 2 {
		return
	}
	if n < radixSortCutoff {
		insertionSortCols(c.Keys, c.Vals)
		return
	}
	var max Key
	for _, k := range c.Keys {
		if k > max {
			max = k
		}
	}
	passes := 1
	for v := max >> 8; v > 0; v >>= 8 {
		passes++
	}
	scratch.Resize(n)
	src, dst := c, scratch
	for p := 0; p < passes; p++ {
		shift := uint(8 * p)
		sk := src.Keys[:n]
		var count [256]int
		for i := range sk {
			count[(sk[i]>>shift)&0xff]++
		}
		// A digit where every key agrees permutes nothing: skip the
		// scatter (common for high digits of clustered key ranges).
		if count[(sk[0]>>shift)&0xff] == n {
			continue
		}
		var off [256]int
		sum := 0
		for d := 0; d < 256; d++ {
			off[d] = sum
			sum += count[d]
		}
		sv := src.Vals[:n]
		dk := dst.Keys[:n]
		dv := dst.Vals[:n]
		for i := range sk {
			d := (sk[i] >> shift) & 0xff
			j := off[d]
			off[d] = j + 1
			dk[j] = sk[i]
			dv[j] = sv[i]
		}
		src, dst = dst, src
	}
	if src != c {
		copy(c.Keys, src.Keys[:n])
		copy(c.Vals, src.Vals[:n])
	}
}

// insertionSortCols is the small-n fallback, keyed on Keys and moving
// Vals in lockstep. Like the radix path it is stable.
func insertionSortCols(keys []Key, vals []Value) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			vals[j+1] = vals[j]
			j--
		}
		keys[j+1] = k
		vals[j+1] = v
	}
}

// IsSortedKeys reports whether keys is in non-decreasing order.
func IsSortedKeys(keys []Key) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// Arena is a grow-only scratch allocator for the columnar kernels. Each
// engine unit owns one; operators borrow column sets, bucket-id arrays
// and tuple staging buffers for the duration of a batch and return them
// when done. Freed buffers go on per-type free lists and are reused by
// the next borrow, so after the first run of each shape has warmed the
// arena, the steady state performs zero heap allocations.
//
// Arena is not safe for concurrent use; the per-unit ownership already
// guarantees single-threaded access.
type Arena struct {
	cols   []*Columns
	ids    [][]int32
	tuples [][]Tuple
}

// Cols borrows a column set of length n (contents undefined).
func (a *Arena) Cols(n int) *Columns {
	var c *Columns
	if len(a.cols) > 0 {
		c = a.cols[len(a.cols)-1]
		a.cols = a.cols[:len(a.cols)-1]
	} else {
		c = &Columns{}
	}
	c.Resize(n)
	return c
}

// PutCols returns a borrowed column set to the arena.
func (a *Arena) PutCols(c *Columns) {
	if c == nil {
		return
	}
	a.cols = append(a.cols, c)
}

// IDs borrows an int32 scratch array of length n (contents undefined),
// sized for bucket identifiers (bucket counts are validated ≤ 2^20).
func (a *Arena) IDs(n int) []int32 {
	if len(a.ids) > 0 {
		ids := a.ids[len(a.ids)-1]
		a.ids = a.ids[:len(a.ids)-1]
		if cap(ids) >= n {
			return ids[:n]
		}
	}
	return make([]int32, n)
}

// PutIDs returns a borrowed id array to the arena.
func (a *Arena) PutIDs(ids []int32) {
	if ids == nil {
		return
	}
	a.ids = append(a.ids, ids)
}

// Tuples borrows a tuple staging buffer with length 0 and capacity ≥ n.
func (a *Arena) Tuples(n int) []Tuple {
	if len(a.tuples) > 0 {
		ts := a.tuples[len(a.tuples)-1]
		a.tuples = a.tuples[:len(a.tuples)-1]
		if cap(ts) >= n {
			return ts[:0]
		}
	}
	return make([]Tuple, 0, n)
}

// PutTuples returns a borrowed staging buffer to the arena.
func (a *Arena) PutTuples(ts []Tuple) {
	if ts == nil {
		return
	}
	a.tuples = append(a.tuples, ts)
}
