package tuple

import (
	"math/rand"
	"testing"
)

func randomColumns(rng *rand.Rand, n int, keySpace uint64) ([]Tuple, *Columns) {
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{Key: Key(rng.Uint64() % keySpace), Val: Value(i)}
	}
	c := &Columns{}
	c.SetTuples(ts)
	return ts, c
}

// Property: AoS→SoA→AoS is the identity, through both the Set/Write
// and the Append converters.
func TestColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 47, 48, 49, 1000} {
		ts, c := randomColumns(rng, n, 1<<20)
		if c.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, c.Len())
		}
		back := make([]Tuple, n)
		c.WriteTuples(back)
		for i := range ts {
			if back[i] != ts[i] {
				t.Fatalf("n=%d: WriteTuples[%d] = %v, want %v", n, i, back[i], ts[i])
			}
		}
		c2 := &Columns{}
		c2.AppendTuples(ts[:n/2])
		c2.AppendTuples(ts[n/2:])
		got := c2.AppendTo(nil)
		for i := range ts {
			if got[i] != ts[i] {
				t.Fatalf("n=%d: AppendTo[%d] = %v, want %v", n, i, got[i], ts[i])
			}
		}
	}
}

// Property: SortByKey produces a sorted permutation of the input —
// same key multiset, payloads still attached to their original keys —
// and, being stable, preserves payload order within equal keys.
func TestColumnsSortByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scratch := &Columns{}
	for _, tc := range []struct {
		n        int
		keySpace uint64
	}{
		{0, 1}, {1, 1}, {2, 2}, {40, 8}, {48, 8}, {100, 4},
		{1000, 1 << 16}, {5000, 1 << 24}, {3000, 7}, {2048, 1},
	} {
		ts, c := randomColumns(rng, tc.n, tc.keySpace)
		c.SortByKey(scratch)
		if !IsSortedKeys(c.Keys) {
			t.Fatalf("n=%d ks=%d: keys not sorted", tc.n, tc.keySpace)
		}
		if !SameMultiset(ts, c.AppendTo(nil)) {
			t.Fatalf("n=%d ks=%d: sort changed the tuple multiset", tc.n, tc.keySpace)
		}
		// Stability: Vals were assigned ascending at generation, so
		// within each equal-key run they must stay ascending.
		for i := 1; i < c.Len(); i++ {
			if c.Keys[i] == c.Keys[i-1] && c.Vals[i] < c.Vals[i-1] {
				t.Fatalf("n=%d ks=%d: unstable at %d: vals %d then %d under key %d",
					tc.n, tc.keySpace, i, c.Vals[i-1], c.Vals[i], c.Keys[i])
			}
		}
	}
}

// Property: the flat key kernels agree with their obvious per-element
// reference loops on random inputs and at every starting offset.
func TestKeyKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		keys := make([]Key, n)
		for i := range keys {
			keys[i] = Key(rng.Uint64() % 8)
		}
		for from := -1; from <= n; from++ {
			needle := Key(rng.Uint64() % 8)
			want := len(keys)
			for i := maxInt(from, 0); i < len(keys); i++ {
				if keys[i] == needle {
					want = i
					break
				}
			}
			if got := FindKey(keys, from, needle); got != want {
				t.Fatalf("FindKey(%v, %d, %d) = %d, want %d", keys, from, needle, got, want)
			}
			bound := Key(rng.Uint64() % 8)
			want = len(keys)
			for i := maxInt(from, 0); i < len(keys); i++ {
				if keys[i] >= bound {
					want = i
					break
				}
			}
			if got := AdvanceBelow(keys, from, bound); got != want {
				t.Fatalf("AdvanceBelow(%v, %d, %d) = %d, want %d", keys, from, bound, got, want)
			}
		}
		for start := 0; start < n; start++ {
			want := len(keys)
			for i := start + 1; i < len(keys); i++ {
				if keys[i] != keys[start] {
					want = i
					break
				}
			}
			if got := RunEnd(keys, start); got != want {
				t.Fatalf("RunEnd(%v, %d) = %d, want %d", keys, start, got, want)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExtractKeys mirrors the key column and reuses capacity.
func TestExtractKeys(t *testing.T) {
	ts, _ := randomColumns(rand.New(rand.NewSource(17)), 100, 1<<10)
	keys := ExtractKeys(nil, ts)
	for i := range ts {
		if keys[i] != ts[i].Key {
			t.Fatalf("keys[%d] = %d, want %d", i, keys[i], ts[i].Key)
		}
	}
	// Shrinking reuse: a smaller extract into the same backing must not
	// allocate.
	small := ts[:10]
	if allocs := testing.AllocsPerRun(100, func() {
		keys = ExtractKeys(keys, small)
	}); allocs != 0 {
		t.Fatalf("ExtractKeys reuse allocated %.1f times per run, want 0", allocs)
	}
}

// Regression (satellite of ISSUE 7): SplitEven no longer formats a name
// per chunk, so its allocations are exactly the output slice plus one
// Relation header per chunk — independent of the parent's name length.
func TestSplitEvenAllocs(t *testing.T) {
	r := &Relation{Name: "a-relation-with-a-reasonably-long-name", Tuples: make([]Tuple, 1<<12)}
	const n = 64
	allocs := testing.AllocsPerRun(100, func() {
		r.SplitEven(n)
	})
	// 1 for the []*Relation plus n Relation structs.
	if allocs > n+1 {
		t.Fatalf("SplitEven(%d) allocated %.1f times per run, want <= %d", n, allocs, n+1)
	}
}

// ChunkName still provides the indexed display form on demand.
func TestChunkName(t *testing.T) {
	r := &Relation{Name: "rel"}
	if got := r.ChunkName(3); got != "rel[3]" {
		t.Fatalf("ChunkName(3) = %q, want %q", got, "rel[3]")
	}
}

// The arena's steady state after warm-up performs zero heap
// allocations: borrow/return cycles at stable sizes reuse the warmed
// buffers, including the radix sort's scratch.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	var a Arena
	rng := rand.New(rand.NewSource(19))
	ts, _ := randomColumns(rng, 4096, 1<<16)
	work := func() {
		c := a.Cols(len(ts))
		scratch := a.Cols(len(ts))
		ids := a.IDs(len(ts))
		stage := a.Tuples(len(ts))
		c.SetTuples(ts)
		c.SortByKey(scratch)
		for i, k := range c.Keys {
			ids[i] = int32(k & 0xff)
		}
		stage = c.AppendTo(stage)
		a.PutTuples(stage)
		a.PutIDs(ids)
		a.PutCols(scratch)
		a.PutCols(c)
	}
	work() // warm-up run populates the free lists
	if allocs := testing.AllocsPerRun(50, work); allocs != 0 {
		t.Fatalf("steady-state arena cycle allocated %.1f times per run, want 0", allocs)
	}
}

// FuzzColumnsSortRoundTrip drives SortByKey with arbitrary key/value
// bytes: output must be sorted, the same multiset as the input, and
// identical to re-sorting (idempotence).
func FuzzColumnsSortRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint64(1<<16))
	f.Add([]byte{}, uint64(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}, uint64(1<<40))
	f.Fuzz(func(t *testing.T, raw []byte, keySpace uint64) {
		if keySpace == 0 {
			keySpace = 1
		}
		c := &Columns{}
		for i := 0; i+8 <= len(raw); i += 8 {
			var k uint64
			for j := 0; j < 8; j++ {
				k = k<<8 | uint64(raw[i+j])
			}
			c.Keys = append(c.Keys, Key(k%keySpace))
			c.Vals = append(c.Vals, Value(i))
		}
		in := c.AppendTo(nil)
		scratch := &Columns{}
		c.SortByKey(scratch)
		if !IsSortedKeys(c.Keys) {
			t.Fatalf("not sorted: %v", c.Keys)
		}
		if !SameMultiset(in, c.AppendTo(nil)) {
			t.Fatal("sort changed the tuple multiset")
		}
		again := &Columns{Keys: append([]Key(nil), c.Keys...), Vals: append([]Value(nil), c.Vals...)}
		again.SortByKey(scratch)
		for i := range c.Keys {
			if again.Keys[i] != c.Keys[i] || again.Vals[i] != c.Vals[i] {
				t.Fatalf("re-sort moved element %d", i)
			}
		}
	})
}
