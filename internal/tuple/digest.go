package tuple

// Digest is an order-insensitive fingerprint of a multiset of tuples.
//
// The Mondrian partitioning phase deliberately permutes the placement of
// tuples inside a destination partition (data permutability, paper §4.1.2),
// so correctness of a shuffle cannot be checked with ordered equality.
// Digest combines commutative reductions (count, sum, xor of a per-tuple
// mix) so that two tuple sequences compare equal iff — with overwhelming
// probability — they contain the same tuples with the same multiplicities,
// in any order.
type Digest struct {
	Count uint64
	Sum   uint64
	Xor   uint64
}

// mix64 is a finalizer-style bijective mixer (splitmix64 variant) applied
// to each tuple so that structured inputs (e.g. sequential keys) still
// produce well-distributed digest components.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashTuple maps a tuple to a 64-bit value; key and payload both count.
func hashTuple(t Tuple) uint64 {
	return mix64(mix64(uint64(t.Key))*0x9e3779b97f4a7c15 + uint64(t.Val))
}

// Add folds one tuple into the digest.
func (d *Digest) Add(t Tuple) {
	h := hashTuple(t)
	d.Count++
	d.Sum += h
	d.Xor ^= h
}

// Equal reports whether two digests are identical.
func (d Digest) Equal(o Digest) bool { return d == o }

// DigestOf computes the multiset digest of a tuple slice.
func DigestOf(ts []Tuple) Digest {
	var d Digest
	for _, t := range ts {
		d.Add(t)
	}
	return d
}

// SameMultiset reports whether a and b hold the same tuples irrespective
// of order (probabilistically, via digests).
func SameMultiset(a, b []Tuple) bool {
	return DigestOf(a).Equal(DigestOf(b))
}
