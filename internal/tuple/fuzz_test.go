package tuple

import (
	"encoding/binary"
	"testing"
)

// tuplesFromBytes decodes arbitrary fuzzer bytes into tuples, 16 bytes
// (key, value) per tuple.
func tuplesFromBytes(data []byte) []Tuple {
	n := len(data) / 16
	ts := make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Tuple{
			Key: Key(binary.LittleEndian.Uint64(data[i*16:])),
			Val: Value(binary.LittleEndian.Uint64(data[i*16+8:])),
		})
	}
	return ts
}

// FuzzSameMultiset checks the digest invariants SameMultiset relies on:
// permutation invariance (reversal), sensitivity to an extra element, and
// sensitivity to a single mutated payload. The seed corpus doubles as a
// regression suite under plain `go test`.
func FuzzSameMultiset(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	// Two tuples sharing a key but not a value.
	seed := make([]byte, 32)
	binary.LittleEndian.PutUint64(seed[0:], 7)
	binary.LittleEndian.PutUint64(seed[8:], 1)
	binary.LittleEndian.PutUint64(seed[16:], 7)
	binary.LittleEndian.PutUint64(seed[24:], 2)
	f.Add(seed)
	// Adversarial-looking repetition: many identical tuples.
	rep := make([]byte, 16*8)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(rep[i*16:], 0xdeadbeef)
		binary.LittleEndian.PutUint64(rep[i*16+8:], 0xcafe)
	}
	f.Add(rep)

	f.Fuzz(func(t *testing.T, data []byte) {
		ts := tuplesFromBytes(data)

		if !SameMultiset(ts, ts) {
			t.Fatal("multiset not equal to itself")
		}

		// Reversal is a permutation: must stay equal.
		rev := make([]Tuple, len(ts))
		for i, tp := range ts {
			rev[len(ts)-1-i] = tp
		}
		if !SameMultiset(ts, rev) {
			t.Fatalf("reversal broke multiset equality: %v", ts)
		}

		// Deterministic interleave (even indices then odd) is also a
		// permutation.
		perm := make([]Tuple, 0, len(ts))
		for i := 0; i < len(ts); i += 2 {
			perm = append(perm, ts[i])
		}
		for i := 1; i < len(ts); i += 2 {
			perm = append(perm, ts[i])
		}
		if !SameMultiset(ts, perm) {
			t.Fatalf("interleave broke multiset equality: %v", ts)
		}

		// Appending any extra tuple changes the count, so equality must
		// break — Digest.Count alone guarantees this.
		extra := append(append([]Tuple(nil), ts...), Tuple{Key: 1, Val: 1})
		if SameMultiset(ts, extra) {
			t.Fatal("extra element not detected")
		}

		// Mutating one payload changes the element hash; the Sum component
		// catches it unless the two hashes collide (mix64 is bijective on
		// (key,val) pairs, so h(old) != h(new) here: same key, val+1).
		if len(ts) > 0 {
			mut := append([]Tuple(nil), ts...)
			mut[0].Val++
			d1, d2 := DigestOf(ts), DigestOf(mut)
			if d1.Sum == d2.Sum && d1.Xor == d2.Xor {
				t.Fatalf("single-value mutation not detected: %v", ts[0])
			}
			if SameMultiset(ts, mut) {
				t.Fatal("SameMultiset missed a mutated payload")
			}
		}
	})
}
