package tuple

// SortSliceByKey sorts a tuple slice by key ascending with a sort
// specialized to the concrete element type. sort.Slice routes every
// swap through a reflection-based swapper (a 16-byte memmove per swap
// plus interface-dispatched comparisons), which profiling shows
// dominating the host time of the sort-heavy operators; this direct
// implementation removes that overhead.
//
// The algorithm — median-of-three quicksort falling back to insertion
// sort below a threshold and to heapsort past a depth limit — is a
// deterministic function of the key sequence, so repeated runs permute
// equal-key tuples identically. The simulated results never depend on
// the permutation chosen among equal keys: timing and traffic see only
// addresses and counts, not payloads.
func SortSliceByKey(ts []Tuple) {
	limit := 0
	for n := len(ts); n > 0; n >>= 1 {
		limit++
	}
	quicksortKeys(ts, 2*limit)
}

const insertionThreshold = 12

func quicksortKeys(ts []Tuple, depth int) {
	for len(ts) > insertionThreshold {
		if depth == 0 {
			heapsortKeys(ts)
			return
		}
		depth--
		p := partitionKeys(ts)
		// Recurse into the smaller side; loop on the larger.
		if p < len(ts)-p-1 {
			quicksortKeys(ts[:p], depth)
			ts = ts[p+1:]
		} else {
			quicksortKeys(ts[p+1:], depth)
			ts = ts[:p]
		}
	}
	insertionSortKeys(ts)
}

// partitionKeys partitions around a median-of-three pivot and returns
// its final index.
func partitionKeys(ts []Tuple) int {
	hi := len(ts) - 1
	mid := hi / 2
	if ts[mid].Key < ts[0].Key {
		ts[mid], ts[0] = ts[0], ts[mid]
	}
	if ts[hi].Key < ts[0].Key {
		ts[hi], ts[0] = ts[0], ts[hi]
	}
	if ts[hi].Key < ts[mid].Key {
		ts[hi], ts[mid] = ts[mid], ts[hi]
	}
	pivot := ts[mid].Key
	ts[mid], ts[hi-1] = ts[hi-1], ts[mid]
	i, j := 0, hi-1
	for {
		i++
		for ts[i].Key < pivot {
			i++
		}
		j--
		for ts[j].Key > pivot {
			j--
		}
		if i >= j {
			break
		}
		ts[i], ts[j] = ts[j], ts[i]
	}
	ts[i], ts[hi-1] = ts[hi-1], ts[i]
	return i
}

func insertionSortKeys(ts []Tuple) {
	for i := 1; i < len(ts); i++ {
		t := ts[i]
		j := i - 1
		for j >= 0 && ts[j].Key > t.Key {
			ts[j+1] = ts[j]
			j--
		}
		ts[j+1] = t
	}
}

func heapsortKeys(ts []Tuple) {
	n := len(ts)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownKeys(ts, i, n)
	}
	for i := n - 1; i > 0; i-- {
		ts[0], ts[i] = ts[i], ts[0]
		siftDownKeys(ts, 0, i)
	}
}

func siftDownKeys(ts []Tuple, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && ts[child].Key < ts[child+1].Key {
			child++
		}
		if ts[root].Key >= ts[child].Key {
			return
		}
		ts[root], ts[child] = ts[child], ts[root]
		root = child
	}
}
