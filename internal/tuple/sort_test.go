package tuple

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// sortCase generates adversarial key distributions for the specialized
// sort: random, sorted, reversed, constant, few-distinct and organ-pipe
// inputs, across sizes that cover the insertion-sort cutoff, the
// quicksort core and (via killer inputs) the heapsort depth fallback.
func sortCases() map[string][]Tuple {
	rng := rand.New(rand.NewSource(42))
	cases := make(map[string][]Tuple)
	mk := func(name string, n int, key func(i int) Key) {
		ts := make([]Tuple, n)
		for i := range ts {
			ts[i] = Tuple{Key: key(i), Val: Value(i)} // Val tags the original position
		}
		cases[fmt.Sprintf("%s/%d", name, n)] = ts
	}
	for _, n := range []int{0, 1, 2, insertionThreshold, insertionThreshold + 1, 100, 4096} {
		mk("random", n, func(int) Key { return Key(rng.Uint64()) })
		mk("sorted", n, func(i int) Key { return Key(i) })
		mk("reversed", n, func(i int) Key { return Key(1<<60) - Key(i) })
		mk("constant", n, func(int) Key { return 7 })
		mk("twovalued", n, func(i int) Key { return Key(i & 1) })
		mk("organpipe", n, func(i int) Key {
			if i < n/2 {
				return Key(i)
			}
			return Key(n - i)
		})
	}
	return cases
}

// TestSortSliceByKey checks the specialized sort against sort.Slice:
// sorted order, and the exact same multiset of tuples (keys AND values —
// no tuple lost, duplicated or torn).
func TestSortSliceByKey(t *testing.T) {
	for name, in := range sortCases() {
		want := append([]Tuple(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })

		got := append([]Tuple(nil), in...)
		SortSliceByKey(got)

		for i := 1; i < len(got); i++ {
			if got[i-1].Key > got[i].Key {
				t.Fatalf("%s: not sorted at %d: %v > %v", name, i, got[i-1], got[i])
			}
		}
		if !SameMultiset(got, want) {
			t.Fatalf("%s: multiset differs from input", name)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: length %d != %d", name, len(got), len(want))
		}
	}
}

// TestSortSliceByKeyHeapsortPath drives the depth-limit fallback: a
// median-of-three killer sequence forces quadratic pivot choices until
// the depth budget runs out, at which point heapsortKeys must finish the
// job correctly.
func TestSortSliceByKeyHeapsortPath(t *testing.T) {
	const n = 1 << 12
	ts := medianOfThreeKiller(n)
	SortSliceByKey(ts)
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Key > ts[i].Key {
			t.Fatalf("killer input not sorted at %d", i)
		}
	}
}

// medianOfThreeKiller builds the classic sequence that defeats
// median-of-three pivot selection (Musser 1997).
func medianOfThreeKiller(n int) []Tuple {
	ts := make([]Tuple, n)
	k := n / 2
	for i := 1; i <= k; i++ {
		if i%2 == 1 {
			ts[i-1] = Tuple{Key: Key(i)}
			ts[i] = Tuple{Key: Key(k + i)}
		}
		ts[k+i-1] = Tuple{Key: Key(2 * i)}
	}
	return ts
}
