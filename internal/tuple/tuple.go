// Package tuple defines the fundamental data representation used throughout
// the Mondrian Data Engine: fixed-size 16-byte key/value tuples and flat
// relations of such tuples.
//
// The paper (§6, "Evaluated operators") bases all experiments on 16-byte
// tuples comprising an 8-byte integer key and an 8-byte integer payload,
// "representing an in-memory columnar database". A []Tuple is exactly that
// memory layout: a densely packed array of 16-byte records, which is what
// the simulated memory system addresses.
package tuple

import (
	"fmt"
	"sort"
)

// Key is an 8-byte join/grouping key.
type Key uint64

// Value is an 8-byte payload carried alongside a key.
type Value uint64

// Size is the size of one Tuple in simulated memory, in bytes.
const Size = 16

// Tuple is a 16-byte key/value record, the unit of all operator processing.
type Tuple struct {
	Key Key
	Val Value
}

// String implements fmt.Stringer for debugging output.
func (t Tuple) String() string { return fmt.Sprintf("(%d,%d)", t.Key, t.Val) }

// Relation is a named, flat sequence of tuples. Relations are the inputs
// and outputs of every data operator.
type Relation struct {
	Name   string
	Tuples []Tuple
}

// NewRelation returns an empty relation with capacity for n tuples. A
// negative n is treated as zero: capacity is a sizing hint, and turning it
// into a makeslice panic would let bad caller input crash the process.
func NewRelation(name string, n int) *Relation {
	if n < 0 {
		n = 0
	}
	return &Relation{Name: name, Tuples: make([]Tuple, 0, n)}
}

// Len returns the number of tuples in the relation.
func (r *Relation) Len() int { return len(r.Tuples) }

// Bytes returns the relation's footprint in simulated memory.
func (r *Relation) Bytes() int64 { return int64(len(r.Tuples)) * Size }

// Append adds tuples to the relation. Hot loops should prefer Append1 or
// AppendSlice: the variadic form materializes a slice header per call.
func (r *Relation) Append(ts ...Tuple) { r.Tuples = append(r.Tuples, ts...) }

// Append1 adds a single tuple without the variadic slice-header cost.
func (r *Relation) Append1(t Tuple) { r.Tuples = append(r.Tuples, t) }

// AppendSlice adds a batch of tuples from an existing slice.
func (r *Relation) AppendSlice(ts []Tuple) { r.Tuples = append(r.Tuples, ts...) }

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Tuples: make([]Tuple, len(r.Tuples))}
	copy(c.Tuples, r.Tuples)
	return c
}

// SortByKey sorts the relation's tuples by key ascending (stable with
// respect to payloads is not required; ties keep payload order unspecified).
func (r *Relation) SortByKey() {
	SortSliceByKey(r.Tuples)
}

// IsSortedByKey reports whether tuples are in non-decreasing key order.
func (r *Relation) IsSortedByKey() bool {
	return sort.SliceIsSorted(r.Tuples, func(i, j int) bool { return r.Tuples[i].Key < r.Tuples[j].Key })
}

// SplitEven divides the relation into n contiguous chunks whose sizes differ
// by at most one tuple. It is used to distribute an input across memory
// partitions (vaults) before an operator runs.
//
// Chunks share the parent's Name: nothing on the placement path reads a
// per-chunk name, and formatting one per vault put a fmt.Sprintf (and
// its allocations) on every run's setup. Display code that wants the
// indexed form builds it on demand with ChunkName.
func (r *Relation) SplitEven(n int) []*Relation {
	if n <= 0 {
		panic("tuple: SplitEven requires n > 0")
	}
	out := make([]*Relation, n)
	total := len(r.Tuples)
	start := 0
	for i := 0; i < n; i++ {
		size := total / n
		if i < total%n {
			size++
		}
		out[i] = &Relation{
			Name:   r.Name,
			Tuples: r.Tuples[start : start+size],
		}
		start += size
	}
	return out
}

// ChunkName formats the indexed display name of chunk i of this
// relation ("name[i]"), for tracing and diagnostics that want to tell
// SplitEven chunks apart.
func (r *Relation) ChunkName(i int) string {
	return fmt.Sprintf("%s[%d]", r.Name, i)
}

// Concat concatenates the given relations into a single new relation.
func Concat(name string, parts []*Relation) *Relation {
	total := 0
	for _, p := range parts {
		total += len(p.Tuples)
	}
	out := &Relation{Name: name, Tuples: make([]Tuple, 0, total)}
	for _, p := range parts {
		out.Tuples = append(out.Tuples, p.Tuples...)
	}
	return out
}
