package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleSize(t *testing.T) {
	// The simulated memory system assumes 16-byte tuples everywhere.
	if Size != 16 {
		t.Fatalf("tuple Size = %d, want 16", Size)
	}
}

func TestRelationAppendLenBytes(t *testing.T) {
	r := NewRelation("r", 4)
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Fatalf("empty relation: Len=%d Bytes=%d", r.Len(), r.Bytes())
	}
	r.Append(Tuple{1, 10}, Tuple{2, 20}, Tuple{3, 30})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Bytes() != 48 {
		t.Fatalf("Bytes = %d, want 48", r.Bytes())
	}
}

func TestCloneIndependence(t *testing.T) {
	r := &Relation{Name: "r", Tuples: []Tuple{{1, 1}, {2, 2}}}
	c := r.Clone()
	c.Tuples[0].Key = 99
	if r.Tuples[0].Key != 1 {
		t.Fatal("Clone shares backing storage with original")
	}
	if c.Name != "r" {
		t.Fatalf("Clone name = %q, want %q", c.Name, "r")
	}
}

func TestSortByKey(t *testing.T) {
	r := &Relation{Tuples: []Tuple{{3, 0}, {1, 0}, {2, 0}}}
	if r.IsSortedByKey() {
		t.Fatal("unsorted relation reported sorted")
	}
	r.SortByKey()
	if !r.IsSortedByKey() {
		t.Fatal("relation not sorted after SortByKey")
	}
	want := []Key{1, 2, 3}
	for i, k := range want {
		if r.Tuples[i].Key != k {
			t.Fatalf("Tuples[%d].Key = %d, want %d", i, r.Tuples[i].Key, k)
		}
	}
}

func TestSplitEvenSizes(t *testing.T) {
	for _, tc := range []struct {
		total, n int
	}{
		{10, 3}, {0, 4}, {7, 7}, {5, 8}, {64, 16},
	} {
		r := &Relation{Name: "r", Tuples: make([]Tuple, tc.total)}
		for i := range r.Tuples {
			r.Tuples[i] = Tuple{Key(i), Value(i)}
		}
		parts := r.SplitEven(tc.n)
		if len(parts) != tc.n {
			t.Fatalf("SplitEven(%d) returned %d parts", tc.n, len(parts))
		}
		sum, maxSz, minSz := 0, 0, tc.total+1
		for _, p := range parts {
			sum += p.Len()
			if p.Len() > maxSz {
				maxSz = p.Len()
			}
			if p.Len() < minSz {
				minSz = p.Len()
			}
		}
		if sum != tc.total {
			t.Fatalf("parts cover %d tuples, want %d", sum, tc.total)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("uneven split: max %d min %d", maxSz, minSz)
		}
		// Concatenation must reproduce the original order exactly.
		back := Concat("back", parts)
		for i := range r.Tuples {
			if back.Tuples[i] != r.Tuples[i] {
				t.Fatalf("Concat(SplitEven) mismatch at %d", i)
			}
		}
	}
}

func TestSplitEvenPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SplitEven(0) did not panic")
		}
	}()
	(&Relation{}).SplitEven(0)
}

func TestDigestOrderInsensitive(t *testing.T) {
	a := []Tuple{{1, 10}, {2, 20}, {3, 30}}
	b := []Tuple{{3, 30}, {1, 10}, {2, 20}}
	if !SameMultiset(a, b) {
		t.Fatal("permuted slices should digest equal")
	}
}

func TestDigestDetectsMissingAndChanged(t *testing.T) {
	a := []Tuple{{1, 10}, {2, 20}, {3, 30}}
	if SameMultiset(a, a[:2]) {
		t.Fatal("digest missed a dropped tuple")
	}
	c := []Tuple{{1, 10}, {2, 21}, {3, 30}}
	if SameMultiset(a, c) {
		t.Fatal("digest missed a changed payload")
	}
	d := []Tuple{{1, 10}, {2, 20}, {2, 20}}
	if SameMultiset(a, d) {
		t.Fatal("digest missed a multiplicity change")
	}
}

func TestDigestMultiplicity(t *testing.T) {
	// {x, x} vs {x} with padding must differ even when xor cancels.
	x := Tuple{7, 7}
	a := []Tuple{x, x}
	b := []Tuple{x}
	if SameMultiset(a, b) {
		t.Fatal("digest treated duplicate pair as single")
	}
}

// Property: a random permutation of any tuple slice digests identically,
// while mutating any single element's payload changes the digest.
func TestDigestPermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(keys []uint64) bool {
		ts := make([]Tuple, len(keys))
		for i, k := range keys {
			ts[i] = Tuple{Key(k), Value(rng.Uint64())}
		}
		perm := make([]Tuple, len(ts))
		copy(perm, ts)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if !SameMultiset(ts, perm) {
			return false
		}
		if len(ts) > 0 {
			i := rng.Intn(len(ts))
			perm[i].Val++
			if SameMultiset(ts, perm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitEven is a partition — disjoint, covering, order-preserving.
func TestSplitEvenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8, parts uint8) bool {
		p := int(parts)%16 + 1
		r := &Relation{Name: "r", Tuples: make([]Tuple, int(n))}
		for i := range r.Tuples {
			r.Tuples[i] = Tuple{Key(rng.Uint64()), Value(rng.Uint64())}
		}
		split := r.SplitEven(p)
		back := Concat("back", split)
		return SameMultiset(r.Tuples, back.Tuples) && len(back.Tuples) == len(r.Tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
