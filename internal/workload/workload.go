// Package workload generates the synthetic datasets used by the Mondrian
// Data Engine experiments.
//
// The paper evaluates all operators on 16-byte tuples with uniformly
// distributed keys (§6). Join inputs follow a foreign-key relationship:
// every tuple of the large relation S matches exactly one tuple of the
// small relation R, which requires R's keys to be unique. The Group-by
// query is tuned for an average group size of four tuples. All generators
// are deterministic given a seed so experiments are reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ecocloud-go/mondrian/internal/tuple"
)

// Config describes a dataset to generate.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Tuples is the cardinality of the (large) relation.
	Tuples int
	// KeySpace bounds generated keys in [0, KeySpace). Zero means Tuples*4.
	KeySpace uint64
}

func (c Config) keySpace() uint64 {
	if c.KeySpace != 0 {
		return c.KeySpace
	}
	return uint64(c.Tuples) * 4
}

// Uniform generates a relation with keys drawn uniformly from the key space
// and random payloads.
func Uniform(name string, c Config) *tuple.Relation {
	rng := rand.New(rand.NewSource(c.Seed))
	r := tuple.NewRelation(name, c.Tuples)
	ks := c.keySpace()
	for i := 0; i < c.Tuples; i++ {
		r.Append1(tuple.Tuple{
			Key: tuple.Key(rng.Uint64() % ks),
			Val: tuple.Value(rng.Uint64()),
		})
	}
	return r
}

// UniformColumns generates the same dataset as Uniform directly into a
// columnar (structure-of-arrays) layout: the key and value sequences are
// identical to Uniform's at the same Config, so a relation materialized
// from the returned columns is tuple-for-tuple equal to Uniform's. dst
// is reset and reused when non-nil (zero-alloc regeneration); pass nil
// to allocate fresh columns.
func UniformColumns(dst *tuple.Columns, c Config) *tuple.Columns {
	if dst == nil {
		dst = &tuple.Columns{}
	}
	dst.Reset()
	rng := rand.New(rand.NewSource(c.Seed))
	ks := c.keySpace()
	for i := 0; i < c.Tuples; i++ {
		// Same draw order as Uniform: key first, then payload.
		k := tuple.Key(rng.Uint64() % ks)
		v := tuple.Value(rng.Uint64())
		dst.Keys = append(dst.Keys, k)
		dst.Vals = append(dst.Vals, v)
	}
	return dst
}

// FKPair generates a primary-key relation R and a foreign-key relation S
// with |S| = c.Tuples and |R| = rTuples. Keys of R are a random permutation
// of [0, rTuples), hence unique; each S tuple references a uniformly chosen
// R key, so every S tuple joins with exactly one R tuple (paper §6).
// Caller-supplied sizes are inputs, not invariants: non-positive values
// return an error rather than panicking.
func FKPair(c Config, rTuples int) (r, s *tuple.Relation, err error) {
	if rTuples <= 0 {
		return nil, nil, fmt.Errorf("workload: FKPair requires rTuples > 0, got %d", rTuples)
	}
	if c.Tuples < 0 {
		return nil, nil, fmt.Errorf("workload: FKPair requires Tuples >= 0, got %d", c.Tuples)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	r = tuple.NewRelation("R", rTuples)
	perm := rng.Perm(rTuples)
	for i := 0; i < rTuples; i++ {
		r.Append1(tuple.Tuple{Key: tuple.Key(perm[i]), Val: tuple.Value(rng.Uint64())})
	}
	s = tuple.NewRelation("S", c.Tuples)
	for i := 0; i < c.Tuples; i++ {
		s.Append1(tuple.Tuple{
			Key: tuple.Key(rng.Intn(rTuples)),
			Val: tuple.Value(rng.Uint64()),
		})
	}
	return r, s, nil
}

// GroupBy generates a relation whose keys repeat with the given average
// group size (the paper's modeled Group-by query averages four tuples per
// group). The number of distinct groups is max(1, Tuples/avgGroupSize).
// Caller-supplied sizes are inputs, not invariants: non-positive values
// return an error rather than panicking.
func GroupBy(c Config, avgGroupSize int) (*tuple.Relation, error) {
	if avgGroupSize <= 0 {
		return nil, fmt.Errorf("workload: GroupBy requires avgGroupSize > 0, got %d", avgGroupSize)
	}
	if c.Tuples < 0 {
		return nil, fmt.Errorf("workload: GroupBy requires Tuples >= 0, got %d", c.Tuples)
	}
	groups := c.Tuples / avgGroupSize
	if groups < 1 {
		groups = 1
	}
	rng := rand.New(rand.NewSource(c.Seed))
	r := tuple.NewRelation("G", c.Tuples)
	for i := 0; i < c.Tuples; i++ {
		r.Append1(tuple.Tuple{
			Key: tuple.Key(rng.Intn(groups)),
			Val: tuple.Value(rng.Uint64() % 1_000_000),
		})
	}
	return r, nil
}

// ScanTarget returns a needle key guaranteed to be present in r, plus the
// number of occurrences, for Scan experiments that must find something.
func ScanTarget(r *tuple.Relation, seed int64) (needle tuple.Key, count int) {
	if r.Len() == 0 {
		return 0, 0
	}
	rng := rand.New(rand.NewSource(seed))
	needle = r.Tuples[rng.Intn(r.Len())].Key
	for _, t := range r.Tuples {
		if t.Key == needle {
			count++
		}
	}
	return needle, count
}

// checkZipfExponent validates a caller-supplied Zipf exponent. rand.NewZipf
// requires s > 1; NaN and infinities are rejected explicitly because they
// slip past the comparison.
func checkZipfExponent(s float64) error {
	if math.IsNaN(s) || math.IsInf(s, 0) || s <= 1.0 {
		return fmt.Errorf("workload: Zipf requires a finite exponent s > 1, got %v", s)
	}
	return nil
}

// Zipf generates a relation with Zipfian-skewed keys. This exercises the
// skewed-partition behaviour the paper defers to future work (§5.4); the
// engine raises an overflow exception for the CPU to handle when a
// destination buffer would overflow. The exponent is a caller input, not
// an invariant: s outside (1, +Inf) returns an error rather than panicking.
func Zipf(name string, c Config, s float64) (*tuple.Relation, error) {
	if err := checkZipfExponent(s); err != nil {
		return nil, err
	}
	if c.Tuples < 0 {
		return nil, fmt.Errorf("workload: Zipf requires Tuples >= 0, got %d", c.Tuples)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	ks := c.keySpace()
	z := rand.NewZipf(rng, s, 1, ks-1)
	r := tuple.NewRelation(name, c.Tuples)
	for i := 0; i < c.Tuples; i++ {
		r.Append1(tuple.Tuple{Key: tuple.Key(z.Uint64()), Val: tuple.Value(rng.Uint64())})
	}
	return r, nil
}

// FKPairZipf generates a foreign-key pair like FKPair, but S references R
// keys with Zipfian frequency: a few hot R rows receive most of the S
// tuples, the join-skew shape JSPIM studies. R's keys remain a random
// permutation of [0, rTuples), so every S tuple still joins with exactly
// one R tuple.
func FKPairZipf(c Config, rTuples int, skew float64) (r, s *tuple.Relation, err error) {
	if err := checkZipfExponent(skew); err != nil {
		return nil, nil, err
	}
	if rTuples <= 0 {
		return nil, nil, fmt.Errorf("workload: FKPairZipf requires rTuples > 0, got %d", rTuples)
	}
	if c.Tuples < 0 {
		return nil, nil, fmt.Errorf("workload: FKPairZipf requires Tuples >= 0, got %d", c.Tuples)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	r = tuple.NewRelation("R", rTuples)
	perm := rng.Perm(rTuples)
	for i := 0; i < rTuples; i++ {
		r.Append1(tuple.Tuple{Key: tuple.Key(perm[i]), Val: tuple.Value(rng.Uint64())})
	}
	z := rand.NewZipf(rng, skew, 1, uint64(rTuples-1))
	s = tuple.NewRelation("S", c.Tuples)
	for i := 0; i < c.Tuples; i++ {
		s.Append1(tuple.Tuple{
			Key: tuple.Key(z.Uint64()),
			Val: tuple.Value(rng.Uint64()),
		})
	}
	return r, s, nil
}

// Sequential generates a relation with strictly increasing keys 0..n-1;
// useful for tests that need a known sorted baseline.
func Sequential(name string, n int) *tuple.Relation {
	r := tuple.NewRelation(name, n)
	for i := 0; i < n; i++ {
		r.Append1(tuple.Tuple{Key: tuple.Key(i), Val: tuple.Value(i * 2)})
	}
	return r
}

// Describe returns a one-line human-readable summary of a relation.
func Describe(r *tuple.Relation) string {
	return fmt.Sprintf("%s: %d tuples (%d bytes)", r.Name, r.Len(), r.Bytes())
}
