package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ecocloud-go/mondrian/internal/tuple"
)

func TestUniformDeterministic(t *testing.T) {
	a := Uniform("a", Config{Seed: 1, Tuples: 1000})
	b := Uniform("b", Config{Seed: 1, Tuples: 1000})
	if !tuple.SameMultiset(a.Tuples, b.Tuples) {
		t.Fatal("same seed produced different relations")
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatal("same seed produced different tuple order")
		}
	}
	c := Uniform("c", Config{Seed: 2, Tuples: 1000})
	if tuple.SameMultiset(a.Tuples, c.Tuples) {
		t.Fatal("different seeds produced identical relations")
	}
}

// TestUniformColumnsMatchesUniform pins the layout-invariance property:
// UniformColumns produces exactly Uniform's key and value sequences at
// any (seed, tuples, keySpace), and reusing the destination columns
// regenerates in place without allocating.
func TestUniformColumnsMatchesUniform(t *testing.T) {
	prop := func(seed int64, tuples uint16, keySpace uint32) bool {
		c := Config{Seed: seed, Tuples: int(tuples%4096) + 1, KeySpace: uint64(keySpace%65536) + 1}
		rel := Uniform("ref", c)
		cols := UniformColumns(nil, c)
		if cols.Len() != len(rel.Tuples) {
			return false
		}
		for i, tp := range rel.Tuples {
			if cols.Keys[i] != tp.Key || cols.Vals[i] != tp.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}

	c := Config{Seed: 7, Tuples: 2048, KeySpace: 1 << 16}
	cols := UniformColumns(nil, c)
	if allocs := testing.AllocsPerRun(10, func() { UniformColumns(cols, c) }); allocs > 1 {
		// One allocation is the rng; the column storage must be reused.
		t.Fatalf("regeneration into warm columns allocates %v times per run", allocs)
	}
}

func TestUniformKeySpace(t *testing.T) {
	r := Uniform("r", Config{Seed: 3, Tuples: 5000, KeySpace: 128})
	for _, tp := range r.Tuples {
		if uint64(tp.Key) >= 128 {
			t.Fatalf("key %d outside key space 128", tp.Key)
		}
	}
}

func TestFKPairUniqueRKeys(t *testing.T) {
	r, s, err := FKPair(Config{Seed: 4, Tuples: 4000}, 500)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[tuple.Key]bool, r.Len())
	for _, tp := range r.Tuples {
		if seen[tp.Key] {
			t.Fatalf("duplicate R key %d", tp.Key)
		}
		seen[tp.Key] = true
	}
	if r.Len() != 500 || s.Len() != 4000 {
		t.Fatalf("sizes: |R|=%d |S|=%d", r.Len(), s.Len())
	}
	// Every S key must exist in R (foreign-key property).
	for _, tp := range s.Tuples {
		if !seen[tp.Key] {
			t.Fatalf("S key %d has no R match", tp.Key)
		}
	}
}

// Caller-supplied sizes are inputs, not invariants: bad values come back
// as errors, never panics (the robustness contract of DESIGN.md §10).
func TestFKPairRejectsBadSizes(t *testing.T) {
	if _, _, err := FKPair(Config{Seed: 1, Tuples: 10}, 0); err == nil {
		t.Fatal("FKPair with rTuples=0 did not error")
	}
	if _, _, err := FKPair(Config{Seed: 1, Tuples: 10}, -3); err == nil {
		t.Fatal("FKPair with rTuples=-3 did not error")
	}
	if _, _, err := FKPair(Config{Seed: 1, Tuples: -10}, 5); err == nil {
		t.Fatal("FKPair with Tuples=-10 did not error")
	}
}

func TestGroupByRejectsBadSizes(t *testing.T) {
	if _, err := GroupBy(Config{Seed: 1, Tuples: 10}, 0); err == nil {
		t.Fatal("GroupBy with avgGroupSize=0 did not error")
	}
	if _, err := GroupBy(Config{Seed: 1, Tuples: -10}, 4); err == nil {
		t.Fatal("GroupBy with Tuples=-10 did not error")
	}
}

func TestGroupByAverageGroupSize(t *testing.T) {
	const n, g = 40000, 4
	r, err := GroupBy(Config{Seed: 5, Tuples: n}, g)
	if err != nil {
		t.Fatal(err)
	}
	groups := make(map[tuple.Key]int)
	for _, tp := range r.Tuples {
		groups[tp.Key]++
	}
	avg := float64(n) / float64(len(groups))
	if avg < 3.5 || avg > 4.5 {
		t.Fatalf("average group size %.2f, want ~%d", avg, g)
	}
}

func TestScanTargetPresent(t *testing.T) {
	r := Uniform("r", Config{Seed: 6, Tuples: 1000, KeySpace: 100})
	needle, count := ScanTarget(r, 9)
	if count < 1 {
		t.Fatal("ScanTarget returned absent needle")
	}
	actual := 0
	for _, tp := range r.Tuples {
		if tp.Key == needle {
			actual++
		}
	}
	if actual != count {
		t.Fatalf("ScanTarget count = %d, actual %d", count, actual)
	}
}

func TestScanTargetEmpty(t *testing.T) {
	if _, count := ScanTarget(tuple.NewRelation("e", 0), 1); count != 0 {
		t.Fatal("empty relation should yield zero count")
	}
}

func TestZipfSkewed(t *testing.T) {
	r, err := Zipf("z", Config{Seed: 7, Tuples: 20000, KeySpace: 1 << 20}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[tuple.Key]int)
	for _, tp := range r.Tuples {
		counts[tp.Key]++
	}
	// The hottest key of a Zipf(1.3) stream must be far above uniform share.
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	if hottest < 100 {
		t.Fatalf("Zipf stream not skewed: hottest key has %d occurrences", hottest)
	}
}

func TestSequential(t *testing.T) {
	r := Sequential("s", 10)
	if !r.IsSortedByKey() {
		t.Fatal("Sequential not sorted")
	}
	if r.Tuples[9].Key != 9 || r.Tuples[9].Val != 18 {
		t.Fatalf("unexpected last tuple %v", r.Tuples[9])
	}
}

func TestDescribe(t *testing.T) {
	got := Describe(Sequential("s", 3))
	want := "s: 3 tuples (48 bytes)"
	if got != want {
		t.Fatalf("Describe = %q, want %q", got, want)
	}
}

// Property: FKPair always yields unique R keys and fully-matching S keys.
func TestFKPairProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, rn, sn uint16) bool {
		rSize := int(rn)%200 + 1
		sSize := int(sn) % 2000
		r, s, err := FKPair(Config{Seed: seed, Tuples: sSize}, rSize)
		if err != nil {
			return false
		}
		keys := make(map[tuple.Key]bool, r.Len())
		for _, tp := range r.Tuples {
			if keys[tp.Key] {
				return false
			}
			keys[tp.Key] = true
		}
		for _, tp := range s.Tuples {
			if !keys[tp.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Caller-supplied exponents are inputs, not invariants: Zipf returns an
// error for s outside (1, +Inf) instead of panicking (DESIGN.md §10).
func TestZipfPanicsOnBadExponent(t *testing.T) {
	for _, s := range []float64{1.0, 0.5, -2, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Zipf("z", Config{Seed: 1, Tuples: 10, KeySpace: 100}, s); err == nil {
			t.Fatalf("Zipf with s=%v did not error", s)
		}
	}
	if _, err := Zipf("z", Config{Seed: 1, Tuples: -1, KeySpace: 100}, 1.5); err == nil {
		t.Fatal("Zipf with Tuples=-1 did not error")
	}
}

func TestFKPairZipf(t *testing.T) {
	r, s, err := FKPairZipf(Config{Seed: 21, Tuples: 20000}, 512, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 512 || s.Len() != 20000 {
		t.Fatalf("sizes: |R|=%d |S|=%d", r.Len(), s.Len())
	}
	keys := make(map[tuple.Key]bool, r.Len())
	for _, tp := range r.Tuples {
		if keys[tp.Key] {
			t.Fatalf("duplicate R key %d", tp.Key)
		}
		keys[tp.Key] = true
	}
	counts := make(map[tuple.Key]int)
	for _, tp := range s.Tuples {
		if !keys[tp.Key] {
			t.Fatalf("S key %d has no R match", tp.Key)
		}
		counts[tp.Key]++
	}
	// The reference skew must be visible: the hottest R row gets far more
	// than its uniform share of S references.
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	if uniform := s.Len() / 512; hottest < 4*uniform {
		t.Fatalf("FKPairZipf not skewed: hottest row has %d refs (uniform share %d)", hottest, uniform)
	}
}

func TestFKPairZipfRejectsBadInputs(t *testing.T) {
	if _, _, err := FKPairZipf(Config{Seed: 1, Tuples: 10}, 8, 1.0); err == nil {
		t.Fatal("FKPairZipf with s=1.0 did not error")
	}
	if _, _, err := FKPairZipf(Config{Seed: 1, Tuples: 10}, 0, 1.5); err == nil {
		t.Fatal("FKPairZipf with rTuples=0 did not error")
	}
	if _, _, err := FKPairZipf(Config{Seed: 1, Tuples: -1}, 8, 1.5); err == nil {
		t.Fatal("FKPairZipf with Tuples=-1 did not error")
	}
}

func TestDefaultKeySpace(t *testing.T) {
	// KeySpace 0 defaults to 4× the cardinality.
	r := Uniform("r", Config{Seed: 8, Tuples: 1000})
	for _, tp := range r.Tuples {
		if uint64(tp.Key) >= 4000 {
			t.Fatalf("key %d outside default key space", tp.Key)
		}
	}
}

func TestGroupByTinyRelation(t *testing.T) {
	// Fewer tuples than the group size still yields at least one group.
	r, err := GroupBy(Config{Seed: 9, Tuples: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	for _, tp := range r.Tuples {
		if tp.Key != 0 {
			t.Fatalf("expected single group, got key %d", tp.Key)
		}
	}
}
