// Package mondrian is a software reproduction of the Mondrian Data Engine
// (Drumond et al., ISCA 2017): an algorithm–hardware co-design for
// near-memory processing of in-memory analytics operators.
//
// The package exposes three layers:
//
//   - the execution engine (NewEngine, Engine, Unit): simulated HMC cubes
//     with per-vault compute units, permutable-write vault controllers,
//     object buffers and stream buffers, plus a cache-backed multicore
//     CPU baseline — all with cycle-approximate timing and Table-4 energy
//     accounting;
//   - the data operators (Scan, Sort, GroupBy, Join) in their
//     CPU-preferred (hash/quicksort) and NMP-preferred (sort/merge)
//     variants;
//   - the experiment harness (NewSuite, Run) that regenerates the paper's
//     Table 5 and Figures 6–9.
//
// Quickstart:
//
//	params := mondrian.DefaultParams()
//	res, err := mondrian.RunExperiment(mondrian.SystemMondrian, mondrian.OperatorJoin, params)
//	// res.TotalNs, res.Energy, res.Verified ...
//
// See examples/ for full programs and DESIGN.md for the model inventory.
package mondrian

import (
	"io"

	"github.com/ecocloud-go/mondrian/internal/bsp"
	"github.com/ecocloud-go/mondrian/internal/energy"
	"github.com/ecocloud-go/mondrian/internal/engine"
	"github.com/ecocloud-go/mondrian/internal/mapreduce"
	"github.com/ecocloud-go/mondrian/internal/operators"
	"github.com/ecocloud-go/mondrian/internal/plan"
	"github.com/ecocloud-go/mondrian/internal/report"
	"github.com/ecocloud-go/mondrian/internal/simulate"
	"github.com/ecocloud-go/mondrian/internal/trace"
	"github.com/ecocloud-go/mondrian/internal/tuple"
	"github.com/ecocloud-go/mondrian/internal/workload"
)

// --- data model ------------------------------------------------------------

// Key is an 8-byte tuple key.
type Key = tuple.Key

// Value is an 8-byte tuple payload.
type Value = tuple.Value

// Tuple is the 16-byte key/value record all operators process.
type Tuple = tuple.Tuple

// Relation is a named sequence of tuples.
type Relation = tuple.Relation

// SameMultiset reports whether two tuple slices hold the same tuples in
// any order (the correctness notion under data permutability).
func SameMultiset(a, b []Tuple) bool { return tuple.SameMultiset(a, b) }

// --- workload generation -----------------------------------------------------

// WorkloadConfig seeds deterministic dataset generation.
type WorkloadConfig = workload.Config

// UniformRelation generates a relation with uniformly distributed keys.
func UniformRelation(name string, c WorkloadConfig) *Relation { return workload.Uniform(name, c) }

// FKRelations generates a primary-key relation R and a foreign-key
// relation S for Join experiments. Non-positive sizes return an error.
func FKRelations(c WorkloadConfig, rTuples int) (r, s *Relation, err error) {
	return workload.FKPair(c, rTuples)
}

// GroupByRelation generates a relation with the given average group size.
// Non-positive sizes return an error.
func GroupByRelation(c WorkloadConfig, avgGroupSize int) (*Relation, error) {
	return workload.GroupBy(c, avgGroupSize)
}

// ZipfRelation generates a skewed relation, for the skew study. Exponents
// outside (1, +Inf) return an error.
func ZipfRelation(name string, c WorkloadConfig, s float64) (*Relation, error) {
	return workload.Zipf(name, c, s)
}

// FKZipfRelations generates a primary-key relation R and a foreign-key
// relation S whose references to R are Zipf-skewed with the given
// exponent, for skewed Join experiments.
func FKZipfRelations(c WorkloadConfig, rTuples int, s float64) (r, sRel *Relation, err error) {
	return workload.FKPairZipf(c, rTuples, s)
}

// ScanNeedle picks a key guaranteed to occur in r and its frequency.
func ScanNeedle(r *Relation, seed int64) (Key, int) { return workload.ScanTarget(r, seed) }

// --- engine ------------------------------------------------------------------

// Arch identifies the compute architecture of an engine.
type Arch = engine.Arch

// The three architectures of the paper.
const (
	ArchCPU      = engine.CPU
	ArchNMP      = engine.NMP
	ArchMondrian = engine.Mondrian
)

// EngineConfig assembles one simulated system.
type EngineConfig = engine.Config

// Engine is a configured system instance.
type Engine = engine.Engine

// Unit is one compute unit (CPU core or per-vault logic-layer core).
type Unit = engine.Unit

// Region is a tuple array resident in one simulated vault.
type Region = engine.Region

// StepProfile characterizes one execution step's inner loop.
type StepProfile = engine.StepProfile

// StepTiming is a completed step's timing.
type StepTiming = engine.StepTiming

// NewEngine builds an engine from a configuration.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// --- operators -----------------------------------------------------------------

// OperatorConfig selects algorithm variants and the cost model.
type OperatorConfig = operators.Config

// CostModel holds per-tuple instruction costs and loop profiles.
type CostModel = operators.CostModel

// DefaultCosts returns the calibrated scalar cost model.
func DefaultCosts() CostModel { return operators.DefaultCosts() }

// MondrianCosts returns the cost model for the SIMD/stream-buffer unit.
func MondrianCosts() CostModel { return operators.MondrianCosts() }

// Aggregates holds the six Group-by aggregation results for one group.
type Aggregates = operators.Aggregates

// Operator results.
type (
	// ScanResult reports a Scan run.
	ScanResult = operators.ScanResult
	// SortResult reports a Sort run.
	SortResult = operators.SortResult
	// GroupByResult reports a Group-by run.
	GroupByResult = operators.GroupByResult
	// JoinResult reports a Join run.
	JoinResult = operators.JoinResult
	// SkewReport summarizes the heavy-hitter detector's observations for
	// a skew-aware partition phase (PartitionResult.Skew).
	SkewReport = operators.SkewReport
)

// Scan searches every partition for tuples with the needle key.
func Scan(e *Engine, cfg OperatorConfig, inputs []*Region, needle Key) (*ScanResult, error) {
	return operators.Scan(e, cfg, inputs, needle)
}

// Sort globally sorts the dataset (range partition + local sorts).
func Sort(e *Engine, cfg OperatorConfig, inputs []*Region) (*SortResult, error) {
	return operators.Sort(e, cfg, inputs)
}

// GroupBy groups by key and applies the six aggregation functions.
func GroupBy(e *Engine, cfg OperatorConfig, inputs []*Region) (*GroupByResult, error) {
	return operators.GroupBy(e, cfg, inputs)
}

// Join executes the foreign-key equi-join R ⋈ S.
func Join(e *Engine, cfg OperatorConfig, rIn, sIn []*Region) (*JoinResult, error) {
	return operators.Join(e, cfg, rIn, sIn)
}

// ErrPartitionOverflow is returned when the announced shuffle data would
// overflow a vault's provisioned destination buffer — the exception the
// hardware raises for the CPU to handle on skewed datasets (§5.4).
// Callers retry with a larger OperatorConfig.Overprovision.
var ErrPartitionOverflow = operators.ErrPartitionOverflow

// Reference oracles for output verification.
var (
	RefScan          = operators.RefScan
	RefSort          = operators.RefSort
	RefGroupBy       = operators.RefGroupBy
	RefGroupByTuples = operators.RefGroupByTuples
	RefJoin          = operators.RefJoin
	Gather           = operators.Gather
)

// --- query plans ---------------------------------------------------------------

// Plan nodes compose operators into multi-stage queries (see
// internal/plan): PlanTable is a leaf of resident data; PlanFilter,
// PlanJoin, PlanGroupBy and PlanSort wrap the basic operators;
// PlanMultiJoin is a star-shaped join the compiler orders greedily.
// Execution tracks each intermediate's partitioning property and elides
// re-shuffles whose partition the input already carries; PlanOptions
// turns the elision off to reproduce the staged baseline.
type (
	PlanNode       = plan.Node
	PlanTable      = plan.Table
	PlanFilter     = plan.Filter
	PlanJoin       = plan.Join
	PlanMultiJoin  = plan.MultiJoin
	PlanGroupBy    = plan.GroupBy
	PlanSort       = plan.Sort
	PlanOptions    = plan.Options
	PlanStage      = plan.StageStats
	PipelineResult = plan.Result
)

// RunPipeline executes a query plan on the engine with re-shuffle elision
// enabled.
func RunPipeline(e *Engine, cfg OperatorConfig, root PlanNode) (*PipelineResult, error) {
	return plan.Run(e, cfg, root)
}

// RunPipelineWith executes a query plan under explicit options.
func RunPipelineWith(e *Engine, cfg OperatorConfig, root PlanNode, opts PlanOptions) (*PipelineResult, error) {
	return plan.RunWith(e, cfg, root, opts)
}

// Materialize compacts operator outputs into the canonical
// one-region-per-vault layout.
func Materialize(e *Engine, outs []*Region) ([]*Region, error) {
	return plan.Materialize(e, outs)
}

// --- MapReduce layer ---------------------------------------------------------

// MapReduceJob describes a MapReduce computation over tuples. Reducers
// must be commutative over their value lists — the same correctness
// requirement data permutability imposes on partition contents (§4.1.2).
type MapReduceJob = mapreduce.Job

// MapReduceResult reports a completed job.
type MapReduceResult = mapreduce.Result

// Mapper and Reducer are the job's user functions.
type (
	Mapper  = mapreduce.Mapper
	Reducer = mapreduce.Reducer
)

// RunMapReduce executes a job on the engine (map → permutable shuffle →
// reduce).
func RunMapReduce(e *Engine, job MapReduceJob, inputs []*Region) (*MapReduceResult, error) {
	return mapreduce.Run(e, job, inputs)
}

// RefMapReduce executes a job in plain Go for verification.
func RefMapReduce(job MapReduceJob, inputs []Tuple) []Tuple {
	return mapreduce.RefRun(job, inputs)
}

// --- BSP graph processing ------------------------------------------------------

// Graph is a directed graph for the BSP layer; BSPProgram a vertex
// program; BSPResult a completed run.
type (
	Graph      = bsp.Graph
	BSPProgram = bsp.Program
	BSPResult  = bsp.Result
)

// RunBSP executes up to maxSupersteps of a vertex program (scatter →
// permutable message exchange → apply).
func RunBSP(e *Engine, p BSPProgram, g *Graph, maxSupersteps int) (*BSPResult, error) {
	return bsp.Run(e, p, g, maxSupersteps)
}

// Canned BSP programs and graph utilities.
var (
	PageRankProgram   = bsp.PageRank
	ComponentsProgram = bsp.Components
	RefPageRank       = bsp.RefPageRank
	RefComponents     = bsp.RefComponents
	RandomGraph       = bsp.RandomGraph
	RingGraph         = bsp.Ring
	Symmetrize        = bsp.Symmetrize
)

// --- trace capture -----------------------------------------------------------

// TraceEvent is one recorded memory access; TraceRecorder captures them
// (install with Engine.SetTracer); TraceStats summarizes a stream.
type (
	TraceEvent    = trace.Event
	TraceRecorder = trace.Recorder
	TraceStats    = trace.Stats
)

// Traced access kinds.
const (
	TraceDemand   = engine.TraceDemand
	TraceShuffle  = engine.TraceShuffle
	TracePermuted = engine.TracePermuted
)

// AnalyzeTrace summarizes an access stream's locality structure.
func AnalyzeTrace(events []TraceEvent, rowBytes int) TraceStats {
	return trace.Analyze(events, rowBytes)
}

// --- experiments -----------------------------------------------------------------

// System identifies one of the paper's evaluated configurations.
type System = simulate.System

// The evaluated systems of §6.
const (
	SystemCPU            = simulate.CPU
	SystemNMP            = simulate.NMP
	SystemNMPPerm        = simulate.NMPPerm
	SystemNMPRand        = simulate.NMPRand
	SystemNMPSeq         = simulate.NMPSeq
	SystemMondrianNoPerm = simulate.MondrianNoPerm
	SystemMondrian       = simulate.Mondrian
)

// Systems lists every registered system in registration order.
func Systems() []System { return simulate.Systems() }

// Operator identifies one of the four basic data operators.
type Operator = simulate.Operator

// The four basic operators of Table 2.
const (
	OperatorScan    = simulate.OpScan
	OperatorSort    = simulate.OpSort
	OperatorGroupBy = simulate.OpGroupBy
	OperatorJoin    = simulate.OpJoin
)

// QueryPlan identifies one of the registered multi-operator query shapes
// the query-plan compiler lowers onto the operators.
type QueryPlan = simulate.Plan

// The registered query shapes.
const (
	QueryPlanFilterSort  = simulate.PlanFilterSort
	QueryPlanSortAgg     = simulate.PlanSortAgg
	QueryPlanJoinAgg     = simulate.PlanJoinAgg
	QueryPlanJoinAggSort = simulate.PlanJoinAggSort
	QueryPlanStarJoinAgg = simulate.PlanStarJoinAgg
)

// QueryPlans lists every registered query shape.
func QueryPlans() []QueryPlan { return simulate.Plans() }

// QueryPlanResult reports one (system, plan) experiment.
type QueryPlanResult = simulate.PlanResult

// RunQueryPlan compiles and executes one registered query shape on one
// system, verifying its output against the composed operator references.
// Params.NoFusion selects the staged baseline.
func RunQueryPlan(s System, pl QueryPlan, p Params) (*QueryPlanResult, error) {
	return simulate.RunPlan(s, pl, p)
}

// Params fixes an experimental setup.
type Params = simulate.Params

// ParamError is the typed rejection every invalid caller input surfaces
// as; its Field names the offending Params field.
type ParamError = simulate.ParamError

// InternalError is a panic recovered at the RunExperiment boundary — an
// engine invariant violation carrying the original value and stack.
type InternalError = simulate.InternalError

// Result is one experiment's outcome.
type Result = simulate.Result

// Suite memoizes experiment runs and assembles tables and figures.
type Suite = simulate.Suite

// EnergyBreakdown is a Fig. 8-style energy account.
type EnergyBreakdown = energy.Breakdown

// DefaultParams returns the paper's system shape with a laptop-scale
// dataset; TestParams a reduced shape for fast checks.
func DefaultParams() Params { return simulate.DefaultParams() }

// TestParams returns a shrunken, fast configuration.
func TestParams() Params { return simulate.TestParams() }

// RunExperiment executes one operator on one system and verifies output.
func RunExperiment(s System, op Operator, p Params) (*Result, error) {
	return simulate.Run(s, op, p)
}

// NewSuite creates a memoizing experiment suite.
func NewSuite(p Params) *Suite { return simulate.NewSuite(p) }

// --- reporting -------------------------------------------------------------------

// WriteTable5 renders the partition-speedup table.
func WriteTable5(w io.Writer, rows []simulate.Table5Row) { report.WriteTable5(w, rows) }

// WriteFig renders a per-operator grouped bar figure.
func WriteFig(w io.Writer, title string, series []simulate.FigSeries) {
	report.WriteFig(w, title, series)
}

// WriteFig8 renders the energy-breakdown figure.
func WriteFig8(w io.Writer, entries []simulate.Fig8Entry) { report.WriteFig8(w, entries) }

// WriteParams prints the Table 3/4 simulation parameters.
func WriteParams(w io.Writer, p Params) { report.WriteParams(w, p) }
