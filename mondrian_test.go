package mondrian_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	mondrian "github.com/ecocloud-go/mondrian"
)

// place distributes a relation evenly across an engine's vaults.
func place(t *testing.T, e *mondrian.Engine, rel *mondrian.Relation) []*mondrian.Region {
	t.Helper()
	parts := rel.SplitEven(e.NumVaults())
	regions := make([]*mondrian.Region, len(parts))
	for v, p := range parts {
		r, err := e.Place(v, p.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		regions[v] = r
	}
	return regions
}

func TestPublicRunExperiment(t *testing.T) {
	p := mondrian.TestParams()
	res, err := mondrian.RunExperiment(mondrian.SystemMondrian, mondrian.OperatorScan, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.TotalNs <= 0 || res.Energy.Total() <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestPublicEngineAndOperators(t *testing.T) {
	p := mondrian.TestParams()
	e, err := mondrian.NewEngine(p.EngineConfig(mondrian.SystemMondrian))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := mondrian.GroupByRelation(mondrian.WorkloadConfig{Seed: 1, Tuples: 4000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mondrian.GroupBy(e, p.OperatorConfig(mondrian.SystemMondrian), place(t, e, rel))
	if err != nil {
		t.Fatal(err)
	}
	want := mondrian.RefGroupBy(rel.Tuples)
	if res.Groups != len(want) {
		t.Fatalf("groups = %d, want %d", res.Groups, len(want))
	}
}

func TestPublicOverflowRetry(t *testing.T) {
	p := mondrian.TestParams()
	skewed, err := mondrian.ZipfRelation("z", mondrian.WorkloadConfig{Seed: 2, Tuples: 8000, KeySpace: 1 << 20}, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(over float64) error {
		e, err := mondrian.NewEngine(p.EngineConfig(mondrian.SystemMondrian))
		if err != nil {
			t.Fatal(err)
		}
		cfg := p.OperatorConfig(mondrian.SystemMondrian)
		cfg.Overprovision = over
		_, err = mondrian.GroupBy(e, cfg, place(t, e, skewed))
		return err
	}
	err = run(2)
	if !errors.Is(err, mondrian.ErrPartitionOverflow) {
		t.Fatalf("skewed run error = %v, want overflow", err)
	}
	if err := run(64); err != nil {
		t.Fatalf("overprovisioned retry failed: %v", err)
	}
}

func TestPublicTraceCapture(t *testing.T) {
	p := mondrian.TestParams()
	e, err := mondrian.NewEngine(p.EngineConfig(mondrian.SystemNMP))
	if err != nil {
		t.Fatal(err)
	}
	rec := &mondrian.TraceRecorder{Limit: 10000}
	e.SetTracer(rec)
	rel := mondrian.UniformRelation("r", mondrian.WorkloadConfig{Seed: 3, Tuples: 2000})
	needle, _ := mondrian.ScanNeedle(rel, 4)
	if _, err := mondrian.Scan(e, p.OperatorConfig(mondrian.SystemNMP), place(t, e, rel), needle); err != nil {
		t.Fatal(err)
	}
	stats := mondrian.AnalyzeTrace(rec.Events(), 256)
	if stats.Events == 0 {
		t.Fatal("no events captured")
	}
	if stats.SeqRatio < 0.9 {
		t.Fatalf("scan trace should be sequential: %.2f", stats.SeqRatio)
	}
}

func TestPublicReportRendering(t *testing.T) {
	var b strings.Builder
	mondrian.WriteParams(&b, mondrian.DefaultParams())
	if !strings.Contains(b.String(), "Table 3") {
		t.Fatal("params output missing Table 3")
	}
}

// Example demonstrates the one-call experiment API.
func Example() {
	p := mondrian.TestParams()
	res, err := mondrian.RunExperiment(mondrian.SystemMondrian, mondrian.OperatorScan, p)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", res.Verified)
	// Output: verified: true
}

// ExampleRunMapReduce shows a word-count job on the engine.
func ExampleRunMapReduce() {
	p := mondrian.TestParams()
	e, err := mondrian.NewEngine(p.EngineConfig(mondrian.SystemMondrian))
	if err != nil {
		panic(err)
	}
	// Three "words": 7 appears twice.
	in := []mondrian.Tuple{{Key: 7, Val: 0}, {Key: 9, Val: 0}, {Key: 7, Val: 0}}
	inputs := make([]*mondrian.Region, e.NumVaults())
	for v := range inputs {
		var part []mondrian.Tuple
		if v == 0 {
			part = in
		}
		r, err := e.Place(v, part)
		if err != nil {
			panic(err)
		}
		inputs[v] = r
	}
	job := mondrian.MapReduceJob{
		Name: "wordcount",
		Map: func(t mondrian.Tuple, emit func(mondrian.Tuple)) {
			emit(mondrian.Tuple{Key: t.Key, Val: 1})
		},
		Reduce: func(k mondrian.Key, vs []mondrian.Value, emit func(mondrian.Tuple)) {
			var sum mondrian.Value
			for _, v := range vs {
				sum += v
			}
			emit(mondrian.Tuple{Key: k, Val: sum})
		},
	}
	res, err := mondrian.RunMapReduce(e, job, inputs)
	if err != nil {
		panic(err)
	}
	var out []mondrian.Tuple
	for _, r := range res.Out {
		out = append(out, r.Tuples...)
	}
	counts := map[mondrian.Key]mondrian.Value{}
	for _, t := range out {
		counts[t.Key] = t.Val
	}
	fmt.Println("count(7) =", counts[7])
	// Output: count(7) = 2
}

// ExampleRunBSP shows connected components over a two-node graph.
func ExampleRunBSP() {
	p := mondrian.TestParams()
	e, err := mondrian.NewEngine(p.EngineConfig(mondrian.SystemMondrian))
	if err != nil {
		panic(err)
	}
	g := mondrian.Symmetrize(&mondrian.Graph{NumVertices: 2, Out: [][]int32{{1}, {}}})
	res, err := mondrian.RunBSP(e, mondrian.ComponentsProgram(), g, 10)
	if err != nil {
		panic(err)
	}
	fmt.Println("labels:", res.States)
	// Output: labels: [0 0]
}
