#!/bin/sh
# End-to-end smoke test for the mondrian-serve daemon: boot it on an
# ephemeral port with the built-in open-loop driver, poll until /healthz
# answers, require that the introspection endpoints carry live data
# (non-zero rolling-window percentiles included), then shut down cleanly
# via SIGTERM and require a zero exit.
#
# Used by `make serve-smoke` and the CI serve-endpoint step.
set -eu

BIN=$(mktemp -t mondrian-serve.XXXXXX)
ADDRFILE=$(mktemp -t mondrian-serve-addr.XXXXXX)
go build -o "$BIN" ./cmd/mondrian-serve

"$BIN" -addr 127.0.0.1:0 -addr-file "$ADDRFILE" -rate 200 -tenants 2 &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    rm -f "$BIN" "$ADDRFILE"
}
trap cleanup EXIT

# Wait for the daemon to publish its ephemeral address and answer.
ADDR=
for _ in $(seq 1 50); do
    ADDR=$(cat "$ADDRFILE" 2>/dev/null || true)
    if [ -n "$ADDR" ] && curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
[ -n "$ADDR" ] || { echo "serve-smoke: daemon never published an address" >&2; exit 1; }

HEALTH=$(curl -fsS "http://$ADDR/healthz")
echo "$HEALTH" | grep -q ok

# Let the driver push enough requests through for live percentiles.
sleep 2

METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -q '# TYPE tenant_runs counter'
echo "$METRICS" | grep -q 'tenant_latency_p99_ns{tenant='

TENANTS=$(curl -fsS "http://$ADDR/tenants")
echo "$TENANTS" | grep -q '"latency_p99_ns":'
if echo "$TENANTS" | grep -q '"latency_p99_ns":0[,}]'; then
    echo "serve-smoke: /tenants has an empty latency percentile: $TENANTS" >&2
    exit 1
fi
if echo "$TENANTS" | grep -q '"queue_wait_p99_ns":0[,}]'; then
    echo "serve-smoke: /tenants has an empty queue-wait percentile: $TENANTS" >&2
    exit 1
fi

FLIGHT=$(curl -fsS "http://$ADDR/flightrecorder")
echo "$FLIGHT" | grep -q '"flight_records"'

# Graceful shutdown: SIGTERM must drain and exit zero.
kill -TERM "$PID"
wait "$PID"
echo "serve-smoke: ok ($ADDR)"
